(* Tests for the memory-system analyzers: the coalescing protocol of
   Section 4.3 (including the Figure 10 granularity example), the
   bank-conflict tool of Section 4.2 (including the Figure 5 cyclic
   reduction strides), and the texture-cache model. *)

module C = Gpu_mem.Coalesce
module B = Gpu_mem.Bank
module Cache = Gpu_mem.Cache

let cfg = { C.group = 16; min_segment = 32; max_segment = 128 }

let addrs xs = Array.map (fun a -> Some a) (Array.of_list xs)

let active n f = Array.init n (fun i -> Some (f i))

(* --- Coalescing: protocol behaviour ------------------------------------- *)

let test_dense_half_warp () =
  (* 16 consecutive 4-byte words = one 64-byte transaction *)
  let txns = C.group_transactions cfg ~width:4 (active 16 (fun i -> 4 * i)) in
  Alcotest.(check int) "one transaction" 1 (C.count txns);
  Alcotest.(check int) "64 bytes" 64 (C.bytes txns);
  Alcotest.(check (float 1e-9)) "fully efficient" 1.0
    (C.efficiency ~width:4 (active 16 (fun i -> 4 * i)) txns)

let test_single_thread () =
  let a = addrs [ 4096 ] in
  let txns = C.group_transactions cfg ~width:4 a in
  Alcotest.(check int) "one transaction" 1 (C.count txns);
  Alcotest.(check int) "shrunk to the 32-byte minimum" 32 (C.bytes txns)

let test_strided_worst_case () =
  (* stride of 128 bytes: every thread in its own segment *)
  let a = active 16 (fun i -> 128 * i) in
  let txns = C.group_transactions cfg ~width:4 a in
  Alcotest.(check int) "16 transactions" 16 (C.count txns);
  Alcotest.(check int) "each 32 bytes" (16 * 32) (C.bytes txns)

let test_unaligned_dense () =
  (* 16 words starting at byte 16 span [16, 80): they straddle the 64-byte
     midpoint of their 128-byte segment, so the transaction cannot shrink
     and 128 bytes move for 64 useful ones *)
  let a = active 16 (fun i -> 16 + (4 * i)) in
  let txns = C.group_transactions cfg ~width:4 a in
  Alcotest.(check int) "one transaction" 1 (C.count txns);
  Alcotest.(check int) "128 bytes moved" 128 (C.bytes txns);
  Alcotest.(check (float 1e-9)) "half the traffic is useful" 0.5
    (C.efficiency ~width:4 a txns)

let test_inactive_lanes () =
  let a = Array.make 16 None in
  Alcotest.(check int) "no transactions for idle lanes" 0
    (C.count (C.group_transactions cfg ~width:4 a));
  a.(3) <- Some 0;
  a.(7) <- Some 4;
  Alcotest.(check int) "partial activity coalesces" 1
    (C.count (C.group_transactions cfg ~width:4 a))

let test_shared_address_broadcastish () =
  (* all threads read the same word: one minimal transaction *)
  let a = active 16 (fun _ -> 256) in
  let txns = C.group_transactions cfg ~width:4 a in
  Alcotest.(check int) "one transaction" 1 (C.count txns);
  Alcotest.(check int) "32 bytes" 32 (C.bytes txns)

let test_misaligned_rejected () =
  Alcotest.(check bool) "misaligned address rejected" true
    (try
       ignore (C.group_transactions cfg ~width:4 (addrs [ 2 ]));
       false
     with Invalid_argument _ -> true)

let test_warp_split () =
  (* a full warp splits into two half-warp issues *)
  let a = active 32 (fun i -> 4 * i) in
  let txns = C.warp_transactions cfg ~width:4 a in
  Alcotest.(check int) "two transactions" 2 (C.count txns);
  Alcotest.(check int) "128 bytes" 128 (C.bytes txns)

(* Figure 10: 2-thread issue granularity, 8-byte transactions.  With the
   straightforward vector layout threads 1 and 2 gather entries 1 and 7 —
   too far apart to share a transaction; interleaving brings paired
   accesses within one 8-byte segment. *)
let test_figure10 () =
  let fig_cfg = { C.group = 2; min_segment = 8; max_segment = 8 } in
  let straight = C.group_transactions fig_cfg ~width:4 (addrs [ 0; 24 ]) in
  Alcotest.(check int) "straightforward: no sharing" 2 (C.count straight);
  let interleaved = C.group_transactions fig_cfg ~width:4 (addrs [ 0; 4 ]) in
  Alcotest.(check int) "interleaved: shared transaction" 1
    (C.count interleaved)

(* --- Coalescing: properties --------------------------------------------- *)

let gen_addresses =
  QCheck.make
    QCheck.Gen.(
      array_size (return 16)
        (oneof
           [
             return None;
             map (fun w -> Some (4 * w)) (int_bound 4096);
           ]))

let covered txns a width =
  match a with
  | None -> true
  | Some addr ->
    List.exists
      (fun (t : C.txn) -> addr >= t.base && addr + width <= t.base + t.size)
      txns

let prop_coverage =
  QCheck.Test.make ~count:500 ~name:"every active lane is served"
    gen_addresses
    (fun a ->
      let txns = C.group_transactions cfg ~width:4 a in
      Array.for_all (fun x -> covered txns x 4) a)

let prop_disjoint =
  QCheck.Test.make ~count:500 ~name:"transactions never overlap"
    gen_addresses
    (fun a ->
      let txns = C.group_transactions cfg ~width:4 a in
      let rec pairs = function
        | [] -> true
        | (t : C.txn) :: rest ->
          List.for_all
            (fun (u : C.txn) ->
              t.base + t.size <= u.base || u.base + u.size <= t.base)
            rest
          && pairs rest
      in
      pairs txns)

let prop_aligned_sizes =
  QCheck.Test.make ~count:500
    ~name:"transactions are power-of-two sized, self-aligned, in range"
    gen_addresses
    (fun a ->
      let txns = C.group_transactions cfg ~width:4 a in
      List.for_all
        (fun (t : C.txn) ->
          t.size >= cfg.min_segment
          && t.size <= cfg.max_segment
          && t.size land (t.size - 1) = 0
          && t.base mod t.size = 0)
        txns)

let prop_finer_granularity_never_moves_more =
  QCheck.Test.make ~count:300
    ~name:"smaller minimum segments never increase traffic" gen_addresses
    (fun a ->
      let coarse = C.bytes (C.group_transactions cfg ~width:4 a) in
      let fine =
        C.bytes
          (C.group_transactions { cfg with C.min_segment = 4 } ~width:4 a)
      in
      fine <= coarse)

(* --- Bank conflicts ------------------------------------------------------ *)

let test_conflict_free () =
  Alcotest.(check int) "linear lanes are conflict-free" 1
    (B.conflict_degree ~banks:16 (active 16 (fun i -> 4 * i)))

let test_broadcast () =
  Alcotest.(check int) "same word is a broadcast" 1
    (B.conflict_degree ~banks:16 (active 16 (fun _ -> 128)))

(* Figure 5: cyclic reduction's stride doubles each step, and so does the
   conflict degree: stride 2 -> 2-way, 4 -> 4-way, 8 -> 8-way... capped at
   the bank count. *)
let test_figure5_strides () =
  List.iter
    (fun (stride, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "stride %d words" stride)
        expect
        (B.conflict_degree ~banks:16
           (active 16 (fun i -> 4 * stride * i))))
    [ (1, 1); (2, 2); (4, 4); (8, 8); (16, 16); (32, 16) ]

let test_prime_banks_remove_conflicts () =
  (* the Section 5.2 architectural proposal: 17 banks break every
     power-of-two stride *)
  List.iter
    (fun stride ->
      Alcotest.(check int)
        (Printf.sprintf "stride %d with 17 banks" stride)
        1
        (B.conflict_degree ~banks:17 (active 16 (fun i -> 4 * stride * i))))
    [ 2; 4; 8; 16; 32 ]

let test_warp_transactions () =
  let a = active 32 (fun i -> 4 * 2 * i) in
  Alcotest.(check int) "2-way conflicts double the transactions" 4
    (B.warp_transactions ~banks:16 ~group:16 a);
  Alcotest.(check int) "ideal is one per half-warp" 2
    (B.ideal_warp_transactions ~group:16 a)

let test_wide_accesses () =
  (* a 64-bit access spans two adjacent banks; sequential 8-byte lanes
     over 16 banks put two distinct words in every bank of each
     half-warp: 2-way conflicts *)
  Alcotest.(check int) "sequential 64-bit lanes conflict 2-way" 2
    (B.conflict_degree ~width:8 ~banks:16 (active 16 (fun i -> 8 * i)));
  (* with 32 banks the same pattern spreads out again *)
  Alcotest.(check int) "32 banks absorb sequential 64-bit lanes" 1
    (B.conflict_degree ~width:8 ~banks:32 (active 16 (fun i -> 8 * i)));
  (* a 64-bit broadcast still touches only one word per bank *)
  Alcotest.(check int) "64-bit broadcast stays free" 1
    (B.conflict_degree ~width:8 ~banks:16 (active 16 (fun _ -> 256)));
  (* ideal transactions count words, so doubles for 64-bit accesses *)
  Alcotest.(check int) "ideal is two words per half-warp" 4
    (B.ideal_warp_transactions ~width:8 ~group:16
       (active 32 (fun i -> 8 * i)))

(* --- Atomic serialization (DESIGN section 15) ---------------------------- *)

let test_atomic_full_contention () =
  (* every lane atomically updates the same word: a plain access would
     broadcast (1 transaction); atomics serialize per lane *)
  let a = active 16 (fun _ -> 128) in
  Alcotest.(check int) "plain access broadcasts" 1
    (B.conflict_degree ~banks:16 a);
  Alcotest.(check int) "atomics serialize all 16 lanes" 16
    (B.atomic_transactions ~banks:16 a)

let test_atomic_conflict_free () =
  (* sequential words, one per bank: no contention either way *)
  let a = active 16 (fun i -> 4 * i) in
  Alcotest.(check int) "distinct banks stay parallel" 1
    (B.atomic_transactions ~banks:16 a)

let test_atomic_kway_duplicates () =
  (* pairs of lanes share a word: 2 accesses per word, still one distinct
     word per bank — the atomic degree sees the multiplicity the plain
     degree cannot *)
  let a = active 16 (fun i -> 4 * (i mod 8)) in
  Alcotest.(check int) "plain degree blind to duplicates" 1
    (B.conflict_degree ~banks:16 a);
  Alcotest.(check int) "2 same-word atomics serialize" 2
    (B.atomic_transactions ~banks:16 a)

let test_atomic_same_bank_stride () =
  (* stride of 16 words: distinct words, all in bank 0 — atomics degrade
     exactly like plain conflicts *)
  let a = active 16 (fun i -> 4 * 16 * i) in
  Alcotest.(check int) "plain 16-way conflict" 16
    (B.conflict_degree ~banks:16 a);
  Alcotest.(check int) "atomic matches on distinct words" 16
    (B.atomic_transactions ~banks:16 a)

let test_atomic_warp_split () =
  let a = active 32 (fun i -> 4 * (i mod 4)) in
  (* per half-warp: 4 words hit 4 times each -> 4 per group *)
  Alcotest.(check int) "groups serialize independently" 8
    (B.warp_atomic_transactions ~banks:16 ~group:16 a);
  Alcotest.(check int) "ideal is one per active group" 2
    (B.ideal_warp_atomic_transactions ~group:16 a);
  Alcotest.(check int) "idle lanes cost nothing" 0
    (B.warp_atomic_transactions ~banks:16 ~group:16 (Array.make 32 None));
  Alcotest.(check int) "no active group, no ideal floor" 0
    (B.ideal_warp_atomic_transactions ~group:16 (Array.make 32 None))

let test_negative_address_rejected () =
  (* OCaml's / and mod truncate toward zero, so -1/4 = 0 would silently
     tally word 0 of bank 0; the analyzer must fail loudly instead *)
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  let neg = addrs [ -4 ] in
  Alcotest.(check bool) "conflict_degree rejects" true
    (raises (fun () -> B.conflict_degree ~banks:16 neg));
  Alcotest.(check bool) "atomic_transactions rejects" true
    (raises (fun () -> B.atomic_transactions ~banks:16 neg));
  Alcotest.(check bool) "warp_transactions rejects" true
    (raises (fun () -> B.warp_transactions ~banks:16 ~group:16 neg));
  Alcotest.(check bool) "warp_atomic_transactions rejects" true
    (raises (fun () -> B.warp_atomic_transactions ~banks:16 ~group:16 neg));
  Alcotest.(check bool) "-1 rejected at the boundary" true
    (raises (fun () -> B.conflict_degree ~banks:16 (addrs [ -1 ])));
  (* address 0 is the valid boundary on the other side *)
  Alcotest.(check int) "address 0 is valid" 1
    (B.conflict_degree ~banks:16 (addrs [ 0 ]));
  Alcotest.(check int) "address 0 atomics are valid" 1
    (B.atomic_transactions ~banks:16 (addrs [ 0 ]))

(* The warp walkers compute per-group degrees over index ranges of the
   one lane array (no per-group slice allocation).  They must agree with
   the obvious slice-then-analyze formulation for any lane pattern. *)
let prop_warp_walkers_match_slices =
  QCheck.Test.make ~count:500
    ~name:"range-based warp walkers equal per-slice analysis"
    (QCheck.make
       QCheck.Gen.(
         array_size (oneofl [ 8; 16; 24; 32 ])
           (oneof
              [
                return None;
                map (fun w -> Some (4 * w)) (int_bound 256);
              ])))
    (fun a ->
      let group = 16 in
      let sliced per_group =
        let n = Array.length a in
        let rec go start acc =
          if start >= n then acc
          else
            let len = min group (n - start) in
            go (start + group) (acc + per_group (Array.sub a start len))
        in
        go 0 0
      in
      B.warp_transactions ~banks:16 ~group a
      = sliced (fun g -> B.conflict_degree ~banks:16 g)
      && B.warp_atomic_transactions ~banks:16 ~group a
         = sliced (fun g -> B.atomic_transactions ~banks:16 g))

let prop_atomic_bounds =
  QCheck.Test.make ~count:500
    ~name:"atomic serialization dominates plain conflicts and its ideal"
    gen_addresses
    (fun a ->
      let atomic = B.warp_atomic_transactions ~banks:16 ~group:16 a in
      let plain = B.warp_transactions ~banks:16 ~group:16 a in
      let ideal = B.ideal_warp_atomic_transactions ~group:16 a in
      let actives =
        Array.fold_left
          (fun n x -> match x with Some _ -> n + 1 | None -> n)
          0 a
      in
      ideal <= atomic && plain <= atomic && atomic <= actives)

let prop_conflict_degree_bounds =
  QCheck.Test.make ~count:500 ~name:"conflict degree within bounds"
    gen_addresses
    (fun a ->
      let actives =
        Array.fold_left
          (fun n x -> match x with Some _ -> n + 1 | None -> n)
          0 a
      in
      let d = B.conflict_degree ~banks:16 a in
      if actives = 0 then d = 0 else d >= 1 && d <= min actives 16)

(* --- Cache model --------------------------------------------------------- *)

let test_cache_hits_on_reuse () =
  let c = Cache.create Cache.gt200_texture_l1 in
  ignore (Cache.access c 0);
  Alcotest.(check bool) "second access hits" true (Cache.access c 0);
  Alcotest.(check bool) "same line hits" true (Cache.access c 28);
  Alcotest.(check bool) "different line misses" false (Cache.access c 64)

let test_cache_streaming_misses () =
  (* streaming through 4x the cache size: all cold misses *)
  let trace = Array.init 2048 (fun i -> i * 32) in
  Alcotest.(check (float 1e-9)) "no reuse, no hits" 0.0
    (Cache.run Cache.gt200_texture_l1 trace)

let test_cache_lru () =
  let c = Cache.create { Cache.size_bytes = 64; line_bytes = 32; ways = 2 } in
  (* one set of 2 ways when sets = 1 *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 32);
  ignore (Cache.access c 0);
  (* inserting a third line evicts the LRU (32) *)
  ignore (Cache.access c 64);
  Alcotest.(check bool) "0 survives" true (Cache.access c 0);
  Alcotest.(check bool) "32 was evicted" false (Cache.access c 32)

let () =
  Alcotest.run "mem"
    [
      ( "coalescing",
        [
          Alcotest.test_case "dense half-warp" `Quick test_dense_half_warp;
          Alcotest.test_case "single thread" `Quick test_single_thread;
          Alcotest.test_case "strided worst case" `Quick
            test_strided_worst_case;
          Alcotest.test_case "unaligned dense" `Quick test_unaligned_dense;
          Alcotest.test_case "inactive lanes" `Quick test_inactive_lanes;
          Alcotest.test_case "broadcast" `Quick
            test_shared_address_broadcastish;
          Alcotest.test_case "misaligned rejected" `Quick
            test_misaligned_rejected;
          Alcotest.test_case "warp split" `Quick test_warp_split;
          Alcotest.test_case "figure 10 example" `Quick test_figure10;
        ] );
      ( "coalescing properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_coverage;
            prop_disjoint;
            prop_aligned_sizes;
            prop_finer_granularity_never_moves_more;
          ] );
      ( "bank conflicts",
        [
          Alcotest.test_case "conflict-free" `Quick test_conflict_free;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "figure 5 strides" `Quick test_figure5_strides;
          Alcotest.test_case "prime banks (Section 5.2)" `Quick
            test_prime_banks_remove_conflicts;
          Alcotest.test_case "warp transactions" `Quick
            test_warp_transactions;
          Alcotest.test_case "wide (64-bit) accesses" `Quick
            test_wide_accesses;
          QCheck_alcotest.to_alcotest prop_conflict_degree_bounds;
        ] );
      ( "atomics",
        [
          Alcotest.test_case "full contention serializes" `Quick
            test_atomic_full_contention;
          Alcotest.test_case "conflict-free stays parallel" `Quick
            test_atomic_conflict_free;
          Alcotest.test_case "k-way duplicates" `Quick
            test_atomic_kway_duplicates;
          Alcotest.test_case "same-bank stride" `Quick
            test_atomic_same_bank_stride;
          Alcotest.test_case "warp split and ideal floor" `Quick
            test_atomic_warp_split;
          Alcotest.test_case "negative addresses rejected" `Quick
            test_negative_address_rejected;
          QCheck_alcotest.to_alcotest prop_warp_walkers_match_slices;
          QCheck_alcotest.to_alcotest prop_atomic_bounds;
        ] );
      ( "cache",
        [
          Alcotest.test_case "reuse hits" `Quick test_cache_hits_on_reuse;
          Alcotest.test_case "streaming misses" `Quick
            test_cache_streaming_misses;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru;
        ] );
    ]
