(* Tests for the analysis daemon: protocol round-trips, request budgets,
   and the robustness properties end-to-end against an in-process server
   — deadline expiry, full-queue backpressure, crash isolation,
   oversized/malformed input, HTTP endpoints and graceful drain. *)

module D = Gpu_diag.Diag
module P = Gpu_serve.Protocol
module Budget = Gpu_serve.Budget
module Server = Gpu_serve.Server
module Client = Gpu_serve.Client
module Jsonx = Gpu_report.Jsonx

(* Keep the pool small and the cache private; a worker writing to a
   closed test socket must not kill the binary. *)
let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Unix.putenv "GPUPERF_CACHE_DIR"
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "gpuperf-serve-test-cache-%d" (Unix.getpid ())));
  Gpu_parallel.Pool.set_jobs 2

let ok_or_fail what = function
  | Ok v -> v
  | Error d -> Alcotest.failf "%s: %s" what (D.to_string d)

(* --- protocol ------------------------------------------------------------- *)

let sample_requests =
  [
    {
      P.id = "a";
      params = P.Matmul { n = 64; tile = 8 };
      device = "baseline";
      format = P.Json;
      deadline_ms = None;
      measure = false;
      sample = None;
    };
    {
      P.id = "b-42";
      params = P.Tridiag { nsys = 16; n = 32; padded = true };
      device = "banks17";
      format = P.Md;
      deadline_ms = Some 250;
      measure = true;
      sample = Some 2;
    };
    {
      P.id = "";
      params = P.Spmv { spmv_format = Gpu_workloads.Spmv.Bell_imiv };
      device = "earlyrelease";
      format = P.Html;
      deadline_ms = Some 0;
      measure = false;
      sample = None;
    };
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let line = P.encode_request req in
      match P.parse_request line with
      | Error d -> Alcotest.failf "round-trip parse failed: %s" (D.to_string d)
      | Ok req' ->
        Alcotest.(check bool)
          ("request survives encode∘parse: " ^ line)
          true (req = req');
        (* and encoding is stable across a second trip *)
        Alcotest.(check string)
          "encode is stable" line (P.encode_request req'))
    sample_requests

let test_request_defaults () =
  let req =
    ok_or_fail "minimal request"
      (P.parse_request {|{"workload":"matmul"}|})
  in
  Alcotest.(check bool)
    "defaults applied" true
    (req.P.params = P.Matmul { n = 1024; tile = 16 }
    && req.P.device = "baseline" && req.P.format = P.Json
    && req.P.deadline_ms = None && (not req.P.measure) && req.P.sample = None)

let test_request_rejections () =
  let cases =
    [
      ("not json at all", "{nope");
      ("not an object", "[1,2]");
      ("missing workload", {|{"id":"x"}|});
      ("unknown workload", {|{"workload":"fft"}|});
      ("unknown key", {|{"workload":"matmul","dedline_ms":5}|});
      ("unknown param key", {|{"workload":"matmul","params":{"m":4}}|});
      ("unknown device", {|{"workload":"matmul","device":"gtx9999"}|});
      ("unknown format", {|{"workload":"matmul","format":"pdf"}|});
      ("negative deadline", {|{"workload":"matmul","deadline_ms":-1}|});
      ("non-integer n", {|{"workload":"matmul","params":{"n":1.5}}|});
      ("zero n", {|{"workload":"matmul","params":{"n":0}}|});
      ("bad spmv format", {|{"workload":"spmv","params":{"format":"coo"}}|});
    ]
  in
  List.iter
    (fun (what, line) ->
      match P.parse_request line with
      | Ok _ -> Alcotest.failf "%s: expected a parse error" what
      | Error d ->
        Alcotest.(check bool)
          (what ^ " is a Serve-stage error")
          true
          (d.D.stage = D.Serve && d.D.severity = D.Error))
    cases

let test_response_roundtrip () =
  let resp =
    P.response ~confidence:"calibrated"
      ~body:(Jsonx.Obj [ ("x", Jsonx.Num 1.0) ])
      ~diags:
        [
          D.error D.Budget ~hint:"wait" "queue full";
          D.warning D.Model "out of range";
        ]
      ~retry_after_ms:500 ~queue_depth:3 ~id:"r9" ~elapsed_ms:12.5
      P.Overloaded
  in
  let line = P.encode_response resp in
  let resp' = ok_or_fail "parse_response" (P.parse_response line) in
  Alcotest.(check string) "id" "r9" resp'.P.r_id;
  Alcotest.(check bool) "status" true (resp'.P.status = P.Overloaded);
  Alcotest.(check (float 1e-9)) "elapsed" 12.5 resp'.P.elapsed_ms;
  Alcotest.(check (option int)) "retry_after" (Some 500)
    resp'.P.retry_after_ms;
  Alcotest.(check (option int)) "queue_depth" (Some 3) resp'.P.queue_depth;
  Alcotest.(check int) "both diags survive" 2 (List.length resp'.P.diags);
  let d = List.hd resp'.P.diags in
  Alcotest.(check bool)
    "diag fields survive" true
    (d.D.stage = D.Budget && d.D.message = "queue full"
    && d.D.hint = Some "wait")

let test_status_names () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        ("status name round-trip: " ^ P.status_name s)
        true
        (P.status_of_name (P.status_name s) = Some s))
    [
      P.Completed; P.Failed; P.Timed_out; P.Overloaded; P.Shutting_down;
      P.Malformed;
    ]

let test_devices () =
  Alcotest.(check bool)
    "baseline heads the fleet" true
    (List.hd P.devices = ("baseline", Gpu_hw.Spec.gtx285));
  Alcotest.(check int) "ten devices" 10 (List.length P.devices);
  Alcotest.(check bool)
    "lookup works" true
    (P.device_of_name "banks17" <> None && P.device_of_name "nope" = None);
  Alcotest.(check bool)
    "later-generation profiles resolve" true
    (P.device_of_name "volta-like" = Some Gpu_hw.Spec.volta_like
    && P.device_of_name "ampere-like" = Some Gpu_hw.Spec.ampere_like)

(* --- budget arithmetic ---------------------------------------------------- *)

let limits = Budget.default_limits

let req_with_deadline d =
  { (List.hd sample_requests) with P.deadline_ms = d }

let test_deadlines () =
  let now = 1000.0 in
  Alcotest.(check bool)
    "no deadline, no default" true
    (Budget.deadline_at ~now ~limits (req_with_deadline None) = None);
  Alcotest.(check bool)
    "explicit deadline" true
    (Budget.deadline_at ~now ~limits (req_with_deadline (Some 250))
    = Some 1000.25);
  let with_default =
    { limits with Budget.default_deadline_ms = Some 100 }
  in
  Alcotest.(check bool)
    "server default applies" true
    (Budget.deadline_at ~now ~limits:with_default (req_with_deadline None)
    = Some 1000.1);
  Alcotest.(check bool)
    "explicit beats default" true
    (Budget.deadline_at ~now ~limits:with_default
       (req_with_deadline (Some 250))
    = Some 1000.25);
  Alcotest.(check bool)
    "0ms expires at admission" true
    (Budget.expired ~now
       (Budget.deadline_at ~now ~limits (req_with_deadline (Some 0))));
  Alcotest.(check bool)
    "unbounded never expires" true
    (not (Budget.expired ~now:1e12 None))

let test_working_set () =
  let ws p = Budget.working_set_bytes p in
  Alcotest.(check bool)
    "matmul grows quadratically" true
    (ws (P.Matmul { n = 2048; tile = 16 })
    = 4 * ws (P.Matmul { n = 1024; tile = 16 }));
  Alcotest.(check bool)
    "tridiag scales with both axes" true
    (ws (P.Tridiag { nsys = 512; n = 512; padded = false })
    > ws (P.Tridiag { nsys = 16; n = 32; padded = false }));
  Alcotest.(check bool)
    "default limits admit the paper's workloads" true
    (ws (P.Matmul { n = 1024; tile = 16 })
     < limits.Budget.max_working_set_bytes
    && ws (P.Spmv { spmv_format = Gpu_workloads.Spmv.Ell })
       < limits.Budget.max_working_set_bytes)

let test_retry_after () =
  Alcotest.(check bool)
    "hint has a floor" true
    (Budget.retry_after_ms ~limits ~queue_depth:0 >= 100);
  Alcotest.(check bool)
    "hint grows with overload" true
    (Budget.retry_after_ms ~limits ~queue_depth:(limits.Budget.queue_cap + 10)
    > Budget.retry_after_ms ~limits ~queue_depth:limits.Budget.queue_cap)

let test_replay_sample_policy () =
  let frac = Budget.replay_sample_fraction in
  Alcotest.(check bool)
    "unmeasured requests never sample" true
    (frac ~measure:false ~remaining_ms:(Some 1.0) = None);
  Alcotest.(check bool)
    "unbounded budget replays exactly" true
    (frac ~measure:true ~remaining_ms:None = None);
  Alcotest.(check bool)
    "ample budget replays exactly" true
    (frac ~measure:true ~remaining_ms:(Some 60_000.0) = None);
  Alcotest.(check bool)
    "tight budget samples 30%" true
    (frac ~measure:true ~remaining_ms:(Some 8_000.0) = Some 0.3);
  Alcotest.(check bool)
    "desperate budget samples 10%" true
    (frac ~measure:true ~remaining_ms:(Some 500.0) = Some 0.1)

(* --- in-process server ---------------------------------------------------- *)

let with_server ?(limits = Budget.default_limits) f =
  let cfg =
    {
      Server.endpoint = P.Tcp ("127.0.0.1", 0);
      limits;
      access_log = None;
    }
  in
  let t = ok_or_fail "Server.create" (Server.create cfg) in
  let runner = Domain.spawn (fun () -> Server.run t) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      ignore (Domain.join runner))
    (fun () -> f t (Server.bound_endpoint t))

let with_client endpoint f =
  let c = ok_or_fail "connect" (Client.connect endpoint) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let small_matmul ?deadline_ms ?(id = "t") () =
  {
    P.id;
    params = P.Matmul { n = 64; tile = 8 };
    device = "baseline";
    format = P.Json;
    deadline_ms;
    measure = false;
    sample = None;
  }

(* Warm the per-process calibration tables once so server tests measure
   serving behavior, not first-touch calibration. *)
let warm =
  lazy (ignore (Gpu_microbench.Tables.for_spec Gpu_hw.Spec.gtx285))

let test_serve_ok () =
  Lazy.force warm;
  with_server @@ fun _t ep ->
  with_client ep @@ fun c ->
  let resp =
    ok_or_fail "request" (Client.request c (small_matmul ~id:"ok-1" ()))
  in
  Alcotest.(check string) "id echoed" "ok-1" resp.P.r_id;
  Alcotest.(check bool) "completed" true (resp.P.status = P.Completed);
  Alcotest.(check bool)
    "has confidence" true
    (resp.P.confidence = Some "calibrated"
    || resp.P.confidence = Some "degraded");
  let body = Option.get resp.P.body in
  Alcotest.(check bool)
    "body has the analysis" true
    (Jsonx.member "predicted_s" body <> None
    && Jsonx.member "bottleneck" body <> None
    && Jsonx.member "occupancy" body <> None);
  Alcotest.(check bool) "elapsed measured" true (resp.P.elapsed_ms >= 0.)

let test_serve_markdown () =
  Lazy.force warm;
  with_server @@ fun _t ep ->
  with_client ep @@ fun c ->
  let req = { (small_matmul ~id:"md" ()) with P.format = P.Md } in
  let resp = ok_or_fail "request" (Client.request c req) in
  Alcotest.(check bool) "completed" true (resp.P.status = P.Completed);
  Alcotest.(check bool) "no json body" true (resp.P.body = None);
  let doc = Option.get resp.P.rendered in
  Alcotest.(check bool)
    "rendered markdown report" true
    (String.length doc > 200
    && String.sub doc 0 1 = "#" (* title heading *))

let test_serve_deadline_zero () =
  with_server @@ fun _t ep ->
  with_client ep @@ fun c ->
  let resp =
    ok_or_fail "request"
      (Client.request c (small_matmul ~deadline_ms:0 ~id:"dl0" ()))
  in
  Alcotest.(check bool) "timed out" true (resp.P.status = P.Timed_out);
  Alcotest.(check bool)
    "carries a Budget diagnostic" true
    (List.exists (fun d -> d.D.stage = D.Budget) resp.P.diags)

let test_serve_watchdog_timeout () =
  Lazy.force warm;
  with_server @@ fun _t ep ->
  with_client ep @@ fun c ->
  (* Real compute, unreachable deadline: the watchdog must answer while
     the worker is still simulating, and the daemon must survive the
     discarded late result. *)
  let req =
    {
      (small_matmul ~deadline_ms:1 ~id:"wd" ()) with
      P.params = P.Matmul { n = 1024; tile = 16 };
    }
  in
  let resp = ok_or_fail "request" (Client.request c req) in
  Alcotest.(check bool) "timed out" true (resp.P.status = P.Timed_out);
  (* follow-up on the same connection still works *)
  let resp2 =
    ok_or_fail "request" (Client.request c (small_matmul ~id:"after" ()))
  in
  Alcotest.(check bool) "daemon alive" true (resp2.P.status = P.Completed)

let test_serve_sampled_replay () =
  Lazy.force warm;
  with_server @@ fun _t ep ->
  with_client ep @@ fun c ->
  (* A measured heterogeneous replay (spmv's grid loads clusters
     unevenly) under a deadline tight enough to trip the sampling policy
     but generous enough to finish: instead of racing the watchdog to a
     timeout the daemon degrades to a sampled replay and says so. *)
  let req =
    {
      (small_matmul ~deadline_ms:8_000 ~id:"sampled" ()) with
      P.params = P.Spmv { spmv_format = Gpu_workloads.Spmv.Ell };
      measure = true;
    }
  in
  let resp = ok_or_fail "request" (Client.request c req) in
  Alcotest.(check bool) "completed, not timed out" true
    (resp.P.status = P.Completed);
  Alcotest.(check bool) "confidence degraded" true
    (resp.P.confidence = Some "degraded");
  Alcotest.(check bool)
    "carries the sampled-replay diagnostic" true
    (List.exists
       (fun (d : D.t) ->
         d.D.severity = D.Warning
         && d.D.stage = D.Timing
         &&
         let m = d.D.message in
         String.length m >= 21 && String.sub m 0 21 = "timing replay sampled")
       resp.P.diags)

let test_serve_backpressure () =
  Lazy.force warm;
  let limits = { Budget.default_limits with Budget.queue_cap = 1 } in
  with_server ~limits @@ fun _t ep ->
  with_client ep @@ fun c ->
  (* One write carrying three requests: they are admitted in one batch,
     before any completion can free the queue slot. *)
  let reqs =
    List.map
      (fun id -> P.encode_request (small_matmul ~id ()))
      [ "q1"; "q2"; "q3" ]
  in
  ok_or_fail "burst" (Client.send_line c (String.concat "\n" reqs));
  let resps =
    List.map
      (fun _ ->
        ok_or_fail "parse"
          (P.parse_response (ok_or_fail "recv" (Client.recv_line c))))
      reqs
  in
  let by_status s =
    List.filter (fun r -> r.P.status = s) resps |> List.length
  in
  (* Completions are written in finish order: the two rejections come
     back immediately, the admitted request later. *)
  Alcotest.(check int) "one admitted and completed" 1 (by_status P.Completed);
  Alcotest.(check int) "two refused" 2 (by_status P.Overloaded);
  List.iter
    (fun r ->
      if r.P.status = P.Overloaded then begin
        Alcotest.(check bool)
          "retry hint present" true
          (Option.value ~default:0 r.P.retry_after_ms >= 100);
        Alcotest.(check (option int)) "depth reported" (Some 1)
          r.P.queue_depth
      end)
    resps

let test_serve_crash_isolation () =
  Lazy.force warm;
  with_server @@ fun _t ep ->
  with_client ep @@ fun c ->
  (* n=100 passes protocol validation (positive) but violates the
     kernel's shape constraint — the failure must be contained. *)
  let req =
    { (small_matmul ~id:"boom" ()) with P.params = P.Matmul { n = 100; tile = 16 } }
  in
  let resp = ok_or_fail "request" (Client.request c req) in
  Alcotest.(check bool) "failed, not crashed" true (resp.P.status = P.Failed);
  Alcotest.(check bool)
    "error diagnostic explains" true
    (List.exists
       (fun d -> d.D.severity = D.Error && d.D.message <> "")
       resp.P.diags);
  let resp2 =
    ok_or_fail "request" (Client.request c (small_matmul ~id:"alive" ()))
  in
  Alcotest.(check bool)
    "worker slot reclaimed; daemon serves on" true
    (resp2.P.status = P.Completed)

let test_serve_malformed_and_oversized () =
  let limits = { Budget.default_limits with Budget.max_request_bytes = 512 } in
  with_server ~limits @@ fun _t ep ->
  with_client ep @@ fun c ->
  (* malformed JSON *)
  ok_or_fail "send" (Client.send_line c "{this is not json");
  let r1 =
    ok_or_fail "parse" (P.parse_response (ok_or_fail "recv" (Client.recv_line c)))
  in
  Alcotest.(check bool) "malformed rejected" true (r1.P.status = P.Malformed);
  (* oversized line (newline-terminated) *)
  ok_or_fail "send" (Client.send_line c (String.make 2000 'x'));
  let r2 =
    ok_or_fail "parse" (P.parse_response (ok_or_fail "recv" (Client.recv_line c)))
  in
  Alcotest.(check bool) "oversized rejected" true (r2.P.status = P.Malformed);
  Alcotest.(check bool)
    "oversized diag names the limit" true
    (List.exists
       (fun d -> d.D.stage = D.Serve || d.D.stage = D.Budget)
       r2.P.diags);
  (* the connection survives both *)
  ok_or_fail "send" (Client.send_line c {|{"op":"ping"}|});
  Alcotest.(check string)
    "connection still usable" {|{"op":"pong"}|}
    (ok_or_fail "recv" (Client.recv_line c))

let test_serve_ops_and_http () =
  with_server @@ fun t ep ->
  with_client ep
    (fun c ->
      ok_or_fail "send" (Client.send_line c {|{"op":"health"}|});
      let health =
        match Jsonx.parse (ok_or_fail "recv" (Client.recv_line c)) with
        | Ok j -> j
        | Error m -> Alcotest.failf "health is not json: %s" m
      in
      Alcotest.(check bool)
        "health reports ok" true
        (Jsonx.member "status" health = Some (Jsonx.Str "ok"));
      Alcotest.(check bool)
        "health mirrors the server" true
        (Jsonx.member "cache_degraded" health
        = Some (Jsonx.Bool (Server.cache_degraded t))));
  (* raw HTTP on the same port *)
  let http target =
    with_client ep (fun c ->
        ok_or_fail "send"
          (Client.send_line c (Printf.sprintf "GET %s HTTP/1.0\r" target));
        let buf = Buffer.create 256 in
        let rec slurp () =
          match Client.recv_line ~timeout_s:5.0 c with
          | Ok line ->
            Buffer.add_string buf (line ^ "\n");
            slurp ()
          | Error _ -> Buffer.contents buf
        in
        slurp ())
  in
  let health = http "/healthz" in
  Alcotest.(check bool)
    "/healthz is HTTP 200 JSON" true
    (String.length health > 0
    && String.sub health 0 12 = "HTTP/1.0 200");
  let metrics = http "/metrics" in
  Alcotest.(check bool)
    "/metrics is OpenMetrics with serve counters" true
    (String.sub metrics 0 12 = "HTTP/1.0 200");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "serve counters exported" true
    (contains metrics "serve_requests");
  let missing = http "/nope" in
  Alcotest.(check bool)
    "unknown endpoint is 404" true
    (String.sub missing 0 12 = "HTTP/1.0 404")

let test_serve_graceful_drain () =
  Lazy.force warm;
  let cfg =
    {
      Server.endpoint = P.Tcp ("127.0.0.1", 0);
      limits = Budget.default_limits;
      access_log = None;
    }
  in
  let t = ok_or_fail "Server.create" (Server.create cfg) in
  let runner = Domain.spawn (fun () -> Server.run t) in
  let ep = Server.bound_endpoint t in
  with_client ep (fun c ->
      (* submit real work, wait for admission, then request shutdown:
         the in-flight request must still be answered before [run]
         returns *)
      let req =
        {
          (small_matmul ~id:"drain" ()) with
          P.params = P.Matmul { n = 512; tile = 16 };
        }
      in
      ok_or_fail "send" (Client.send_line c (P.encode_request req));
      let admitted = Unix.gettimeofday () +. 10.0 in
      while
        Server.queue_depth t = 0 && Unix.gettimeofday () < admitted
      do
        Unix.sleepf 0.002
      done;
      Server.stop t;
      let resp =
        ok_or_fail "parse"
          (P.parse_response (ok_or_fail "recv" (Client.recv_line c)))
      in
      Alcotest.(check bool)
        "in-flight request drained" true
        (resp.P.status = P.Completed);
      (* a request submitted during the drain is refused, not dropped *)
      match Client.request ~timeout_s:5.0 c (small_matmul ~id:"late" ()) with
      | Ok r ->
        Alcotest.(check bool)
          "late request refused" true
          (r.P.status = P.Shutting_down)
      | Error _ -> () (* daemon already gone: also acceptable *));
  match Domain.join runner with
  | Ok () -> ()
  | Error d -> Alcotest.failf "drain was not clean: %s" (D.to_string d)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request encode∘parse round-trip" `Quick
            test_request_roundtrip;
          Alcotest.test_case "request defaults" `Quick test_request_defaults;
          Alcotest.test_case "malformed requests rejected" `Quick
            test_request_rejections;
          Alcotest.test_case "response round-trip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "status wire names" `Quick test_status_names;
          Alcotest.test_case "device fleet" `Quick test_devices;
        ] );
      ( "budget",
        [
          Alcotest.test_case "deadline arithmetic" `Quick test_deadlines;
          Alcotest.test_case "working-set estimates" `Quick test_working_set;
          Alcotest.test_case "retry-after hint" `Quick test_retry_after;
          Alcotest.test_case "replay-sampling policy" `Quick
            test_replay_sample_policy;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "answers an analysis request" `Quick
            test_serve_ok;
          Alcotest.test_case "renders markdown bodies" `Quick
            test_serve_markdown;
          Alcotest.test_case "0ms deadline expires at admission" `Quick
            test_serve_deadline_zero;
          Alcotest.test_case "watchdog answers past-deadline compute" `Quick
            test_serve_watchdog_timeout;
          Alcotest.test_case "deadline pressure samples the replay" `Quick
            test_serve_sampled_replay;
          Alcotest.test_case "full queue pushes back" `Quick
            test_serve_backpressure;
          Alcotest.test_case "a crashing request is isolated" `Quick
            test_serve_crash_isolation;
          Alcotest.test_case "malformed and oversized lines" `Quick
            test_serve_malformed_and_oversized;
          Alcotest.test_case "control ops and HTTP endpoints" `Quick
            test_serve_ops_and_http;
          Alcotest.test_case "graceful drain" `Quick
            test_serve_graceful_drain;
        ] );
    ]
