(* Tests for the functional simulator (Barra analog): SIMT execution with
   divergence, barriers, partial warps, the dynamic statistics of the info
   extractor, and launch validation. *)

module Ir = Gpu_kernel.Ir
module Sim = Gpu_sim.Sim
module Stats = Gpu_sim.Stats
module I = Gpu_isa.Instr

let compile = Gpu_kernel.Compile.compile

let run ?(grid = 1) ?(block = 32) ?collect_trace k args =
  Sim.run ?collect_trace ~grid ~block ~args (compile k) ~spec:Gpu_hw.Spec.gtx285

let ints a = Array.map Int32.to_int a

let test_vector_add () =
  let k =
    {
      Ir.name = "vadd";
      params = [ "a"; "b"; "c" ];
      shared = [];
      body =
        [
          Ir.Let ("gid", Ir.(imad Ctaid Ntid Tid));
          Ir.St_global
            ( "c",
              Ir.v "gid",
              Ir.(Ld_global ("a", v "gid") + Ld_global ("b", v "gid")) );
        ];
    }
  in
  let n = 96 in
  let a = ("a", Array.init n Int32.of_int) in
  let b = ("b", Array.init n (fun i -> Int32.of_int (10 * i))) in
  let c = ("c", Array.make n 0l) in
  let _ = run ~grid:3 ~block:32 k [ a; b; c ] in
  Array.iteri
    (fun i v -> Alcotest.(check int) "sum" (11 * i) v)
    (ints (snd c))

let test_if_else_divergence () =
  let k =
    {
      Ir.name = "diverge";
      params = [ "out" ];
      shared = [];
      body =
        [
          Ir.If
            ( Ir.(Tid < i 10),
              [ Ir.St_global ("out", Ir.Tid, Ir.(Tid * i 2)) ],
              [ Ir.St_global ("out", Ir.Tid, Ir.(i 1000 + Tid)) ] );
        ];
    }
  in
  let out = ("out", Array.make 32 0l) in
  let _ = run k [ out ] in
  Array.iteri
    (fun t v ->
      let expect = if t < 10 then 2 * t else 1000 + t in
      Alcotest.(check int) (Printf.sprintf "thread %d" t) expect v)
    (ints (snd out))

let test_nested_divergence () =
  let k =
    {
      Ir.name = "nested";
      params = [ "out" ];
      shared = [];
      body =
        [
          Ir.Local ("r", Ir.Int 0);
          Ir.If
            ( Ir.(Tid < i 16),
              [
                Ir.If
                  ( Ir.((Tid land i 1) = i 0),
                    [ Ir.Assign ("r", Ir.Int 1) ],
                    [ Ir.Assign ("r", Ir.Int 2) ] );
              ],
              [
                Ir.If
                  ( Ir.((Tid land i 1) = i 0),
                    [ Ir.Assign ("r", Ir.Int 3) ],
                    [ Ir.Assign ("r", Ir.Int 4) ] );
              ] );
          Ir.St_global ("out", Ir.Tid, Ir.v "r");
        ];
    }
  in
  let out = ("out", Array.make 32 0l) in
  let _ = run k [ out ] in
  Array.iteri
    (fun t v ->
      let expect =
        match (t < 16, t land 1 = 0) with
        | true, true -> 1
        | true, false -> 2
        | false, true -> 3
        | false, false -> 4
      in
      Alcotest.(check int) (Printf.sprintf "thread %d" t) expect v)
    (ints (snd out))

let test_data_dependent_loop () =
  let k =
    {
      Ir.name = "countdown";
      params = [ "out" ];
      shared = [];
      body =
        [
          Ir.Local ("n", Ir.Tid);
          Ir.Local ("acc", Ir.Int 0);
          Ir.While
            ( Ir.(v "n" > i 0),
              [
                Ir.Assign ("acc", Ir.(v "acc" + v "n"));
                Ir.Assign ("n", Ir.(v "n" - i 1));
              ] );
          Ir.St_global ("out", Ir.Tid, Ir.v "acc");
        ];
    }
  in
  let out = ("out", Array.make 64 0l) in
  let _ = run ~block:64 k [ out ] in
  Array.iteri
    (fun t v -> Alcotest.(check int) "triangular number" (t * (t + 1) / 2) v)
    (ints (snd out))

let test_barrier_communication () =
  (* warp 0 writes shared memory, warp 1 reads it after a barrier:
     reversal across warps requires the barrier to be exact *)
  let k =
    {
      Ir.name = "reverse";
      params = [ "out" ];
      shared = [ ("buf", 64) ];
      body =
        [
          Ir.St_shared ("buf", Ir.Tid, Ir.Tid);
          Ir.Sync;
          Ir.St_global
            ("out", Ir.Tid, Ir.Ld_shared ("buf", Ir.(i 63 - Tid)));
        ];
    }
  in
  let out = ("out", Array.make 64 0l) in
  let _ = run ~block:64 k [ out ] in
  Array.iteri
    (fun t v -> Alcotest.(check int) "reversed" (63 - t) v)
    (ints (snd out))

let test_partial_warp () =
  let k =
    {
      Ir.name = "partial";
      params = [ "out" ];
      shared = [];
      body = [ Ir.St_global ("out", Ir.Tid, Ir.(Tid + i 1)) ];
    }
  in
  let out = ("out", Array.make 40 0l) in
  let _ = run ~block:40 k [ out ] in
  Alcotest.(check int) "lane 39 wrote" 40 (Int32.to_int (snd out).(39))

let test_float_ops () =
  let k =
    {
      Ir.name = "floats";
      params = [ "out" ];
      shared = [];
      body =
        [
          Ir.Let ("x", Ir.I2f Ir.Tid);
          Ir.St_global
            ( "out",
              Ir.Tid,
              Ir.F2i Ir.(fmad (v "x") (v "x") (f 1.0)) );
        ];
    }
  in
  let out = ("out", Array.make 32 0l) in
  let _ = run k [ out ] in
  Array.iteri
    (fun t v -> Alcotest.(check int) "t*t+1" ((t * t) + 1) v)
    (ints (snd out))

let test_sfu_rcp () =
  let k =
    {
      Ir.name = "rcp";
      params = [ "out" ];
      shared = [];
      body =
        [
          Ir.St_global
            ( "out",
              Ir.Tid,
              Ir.F2i Ir.(Sfu (Rcp, f 0.25) *. f 10.0) );
        ];
    }
  in
  let out = ("out", Array.make 32 0l) in
  let _ = run k [ out ] in
  Alcotest.(check int) "1/0.25 * 10 = 40" 40 (Int32.to_int (snd out).(0))

(* --- Statistics (the info extractor) ------------------------------------ *)

let straight_line_kernel =
  {
    Ir.name = "stats";
    params = [ "x" ];
    shared = [ ("s", 32) ];
    body =
      [
        Ir.Let ("a", Ir.Ld_global ("x", Ir.Tid)); (* 1 gmem access *)
        Ir.St_shared ("s", Ir.Tid, Ir.v "a"); (* 1 smem access *)
        Ir.Sync;
        Ir.St_global ("x", Ir.Tid, Ir.Ld_shared ("s", Ir.Tid));
      ];
  }

let test_stats_counts () =
  let x = ("x", Array.make 32 0l) in
  let r = run straight_line_kernel [ x ] in
  Alcotest.(check int) "two stages" 2 (Stats.num_stages r.Sim.stats);
  let s0 = Stats.stage r.Sim.stats 0 in
  let s1 = Stats.stage r.Sim.stats 1 in
  Alcotest.(check int) "stage 0: one gmem access" 1 s0.Stats.gmem_accesses;
  Alcotest.(check int) "stage 0: one smem access" 1 s0.Stats.smem_accesses;
  Alcotest.(check int) "stage 0: smem conflict-free (2 half-warps)" 2
    s0.Stats.smem_txns;
  Alcotest.(check int) "stage 0: one barrier" 1 s0.Stats.barriers;
  Alcotest.(check int) "stage 1: two memory instructions" 2
    (s1.Stats.gmem_accesses + s1.Stats.smem_accesses);
  Alcotest.(check int) "stage 0: one active warp" 1
    s0.Stats.active_warp_slots;
  (* coalesced 32-lane load: 2 transactions of 64 B *)
  Alcotest.(check int) "gmem bytes" 128 s0.Stats.gmem_transferred_bytes

let test_stats_density () =
  let k =
    {
      Ir.name = "mads";
      params = [ "x" ];
      shared = [];
      body =
        [
          Ir.Local ("acc", Ir.Float 0.0);
          Ir.Assign ("acc", Ir.(fmad (v "acc") (v "acc") (v "acc")));
          Ir.St_global ("x", Ir.Tid, Ir.v "acc");
        ];
    }
  in
  let x = ("x", Array.make 32 0l) in
  let r = run k [ x ] in
  let total = Stats.total r.Sim.stats in
  Alcotest.(check int) "one MAD" 1 total.Stats.mads;
  Alcotest.(check bool) "density below one" true
    (Stats.computational_density total < 1.0)

let test_trace_collection () =
  let x = ("x", Array.make 32 0l) in
  let r = run ~collect_trace:true straight_line_kernel [ x ] in
  match r.Sim.traces with
  | [ t ] ->
    Alcotest.(check int) "one warp" 1 (Array.length t.Gpu_sim.Trace.warps);
    let events = t.Gpu_sim.Trace.warps.(0) in
    Alcotest.(check bool) "trace has events" true (Array.length events > 4);
    Alcotest.(check int) "exactly one barrier event" 1
      (Array.fold_left
         (fun acc (e : Gpu_sim.Trace.event) ->
           if e.Gpu_sim.Trace.bar then acc + 1 else acc)
         0 events)
  | _ -> Alcotest.fail "expected a single block trace"

(* --- Trace encoding ------------------------------------------------------- *)

module Trace = Gpu_sim.Trace

let test_trace_builder () =
  (* The growing builder must hand back exactly what was appended, in
     order, across several doublings of its backing buffer. *)
  let ev i =
    {
      Trace.cls = I.Class_ii;
      dst = i mod 7;
      srcs = [| i; i + 1 |];
      mem = Trace.No_mem;
      bar = false;
    }
  in
  let b = Trace.builder () in
  Alcotest.(check int) "empty" 0 (Array.length (Trace.finish b));
  for i = 0 to 99 do
    Trace.add b (ev i)
  done;
  let got = Trace.finish b in
  Alcotest.(check int) "100 events" 100 (Array.length got);
  Array.iteri
    (fun i e -> Alcotest.(check bool) "in order" true (e = ev i))
    got

let test_flat_round_trip () =
  (* One warp exercising every event shape the simulator emits: plain
     ALU, predicate destinations, shared-memory transactions, fused
     smem+ALU, global loads and stores with per-lane transaction lists,
     and a barrier.  Flattening then re-inflating must be the identity —
     that is what lets the timing engine replay the packed form while
     every oracle and pretty-printer keeps consuming events. *)
  let w =
    [|
      { Trace.cls = I.Class_ii; dst = 3; srcs = [| 1; 2 |];
        mem = Trace.No_mem; bar = false };
      { Trace.cls = I.Class_iii; dst = Trace.pred_reg_base + 2;
        srcs = [| 3 |]; mem = Trace.No_mem; bar = false };
      { Trace.cls = I.Class_mem; dst = 4; srcs = [||];
        mem = Trace.Smem 16; bar = false };
      { Trace.cls = I.Class_ii; dst = 5; srcs = [| 4; 3 |];
        mem = Trace.Smem 2; bar = false };
      { Trace.cls = I.Class_mem; dst = 9; srcs = [| 4 |];
        mem = Trace.Smem_atomic 16; bar = false };
      { Trace.cls = I.Class_mem; dst = 6; srcs = [| 5 |];
        mem = Trace.Gmem_load [| (0, 64); (128, 32); (4096, 128) |];
        bar = false };
      { Trace.cls = I.Class_mem; dst = Trace.no_reg; srcs = [| 6 |];
        mem = Trace.Gmem_store [| (256, 64) |]; bar = false };
      { Trace.cls = I.Class_ctrl; dst = Trace.no_reg; srcs = [||];
        mem = Trace.No_mem; bar = true };
      { Trace.cls = I.Class_mem; dst = 7; srcs = [||];
        mem = Trace.Gmem_load [||]; bar = false };
    |]
  in
  let f = Trace.Flat.of_warp w in
  Alcotest.(check int) "flat length" (Array.length w) (Trace.Flat.length f);
  let back = Trace.Flat.to_events f in
  Alcotest.(check int) "round-trip length" (Array.length w)
    (Array.length back);
  Array.iteri
    (fun i e ->
      Alcotest.(check bool)
        (Printf.sprintf "event %d survives the round trip" i)
        true (e = back.(i)))
    w

(* --- Raw ISA semantics ---------------------------------------------------- *)

(* Run a hand-written native program (one warp) and return the "out"
   buffer; register r0 holds its base address per the calling convention. *)
let run_raw ?(block = 32) ~out_words lines =
  let program = Gpu_isa.Program.of_lines ~name:"raw" lines in
  let k =
    {
      Gpu_kernel.Compile.program;
      param_regs = [ ("out", 0) ];
      shared_offsets = [];
      smem_bytes = 256;
      reg_demand = Gpu_isa.Program.register_demand program;
      srcmap = [||];
    }
  in
  let out = ("out", Array.make out_words 0l) in
  let _ = Sim.run ~grid:1 ~block ~args:[ out ] k in
  snd out

let ins op = Gpu_isa.Program.Instr (I.mk op)

let pins ~pred op = Gpu_isa.Program.Instr (I.mk ~pred op)

let r n = I.R n

let test_predicated_execution () =
  (* lanes with tid < 5 write 1, others keep 0, via predication only *)
  let out =
    run_raw ~out_words:32
      [
        ins (I.Mov_sreg (r 1, I.Tid_x));
        ins (I.Setp (I.Lt, I.S32, I.P 0, I.Reg (r 1), I.Imm 5l));
        ins (I.Imad (r 2, I.Reg (r 1), I.Imm 4l, I.Reg (r 0)));
        pins ~pred:(I.P 0, true)
          (I.St (I.Global, 4, { I.base = r 2; offset = 0 }, I.Imm 1l));
        ins I.Exit;
      ]
  in
  Array.iteri
    (fun t v ->
      Alcotest.(check int)
        (Printf.sprintf "lane %d" t)
        (if t < 5 then 1 else 0)
        (Int32.to_int v))
    out

let test_fused_mad_semantics () =
  (* shared[0] = 3.0; out[tid] = 2.0 * shared[0] + 1.0 = 7.0 *)
  let out =
    run_raw ~out_words:32
      [
        ins (I.Mov (r 1, I.Imm 0l));
        ins (I.St (I.Shared, 4, { I.base = r 1; offset = 0 }, I.Fimm 3.0));
        ins
          (I.Fmad_smem
             (r 2, I.Fimm 2.0, { I.base = r 1; offset = 0 }, I.Fimm 1.0));
        ins (I.Cvt (I.F2i, r 3, I.Reg (r 2)));
        ins (I.Mov_sreg (r 4, I.Tid_x));
        ins (I.Imad (r 5, I.Reg (r 4), I.Imm 4l, I.Reg (r 0)));
        ins (I.St (I.Global, 4, { I.base = r 5; offset = 0 }, I.Reg (r 3)));
        ins I.Exit;
      ]
  in
  Alcotest.(check int) "2*3+1" 7 (Int32.to_int out.(0))

let test_double_precision () =
  (* class IV path: d = 1.5 + 2.25 computed in fp64, stored as two words *)
  let out =
    run_raw ~out_words:2
      [
        ins (I.Mov (r 1, I.Imm 0l));
        ins (I.Mov (r 2, I.Imm 0l));
        (* build doubles via a 64-bit load would need memory; instead use
           dadd on f64 bit patterns loaded through Mov of halves is not
           expressible, so exercise Dadd on zero + zero and Dfma *)
        ins (I.Dop (I.Dadd, r 3, I.Reg (r 1), I.Reg (r 2)));
        ins (I.St (I.Global, 8, { I.base = r 0; offset = 0 }, I.Reg (r 3)));
        ins I.Exit;
      ]
  in
  Alcotest.(check int32) "lo word" 0l out.(0);
  Alcotest.(check int32) "hi word" 0l out.(1)

let test_load64_roundtrip () =
  (* store a double, load it back, fma with it *)
  let program =
    [
      ins (I.Mov_sreg (r 1, I.Laneid));
      ins (I.Setp (I.Eq, I.S32, I.P 0, I.Reg (r 1), I.Imm 0l));
      (* lane 0 only to avoid racing the same address *)
      pins ~pred:(I.P 0, true)
        (I.Ld (I.Global, 8, r 2, { I.base = r 0; offset = 0 }));
      pins ~pred:(I.P 0, true)
        (I.Dfma (r 3, I.Reg (r 2), I.Reg (r 2), I.Reg (r 2)));
      pins ~pred:(I.P 0, true)
        (I.St (I.Global, 8, { I.base = r 0; offset = 8 }, I.Reg (r 3)));
      ins I.Exit;
    ]
  in
  let p = Gpu_isa.Program.of_lines ~name:"d64" program in
  let k =
    {
      Gpu_kernel.Compile.program = p;
      param_regs = [ ("out", 0) ];
      shared_offsets = [];
      smem_bytes = 0;
      reg_demand = Gpu_isa.Program.register_demand p;
      srcmap = [||];
    }
  in
  let bits = Int64.bits_of_float 3.0 in
  let buf =
    [|
      Int64.to_int32 bits;
      Int64.to_int32 (Int64.shift_right_logical bits 32);
      0l; 0l;
    |]
  in
  let out = ("out", buf) in
  let _ = Sim.run ~grid:1 ~block:32 ~args:[ out ] k in
  let lo = Int64.logand (Int64.of_int32 buf.(2)) 0xFFFFFFFFL in
  let hi = Int64.shift_left (Int64.of_int32 buf.(3)) 32 in
  Alcotest.(check (float 1e-12)) "3*3+3" 12.0
    (Int64.float_of_bits (Int64.logor lo hi))

let test_atomic_add_lane_order () =
  (* All 32 lanes atomically add 1 to shared word 0.  Lanes perform their
     read-modify-writes in lane order, each observing the previous lane's
     write: lane i's returned old value is exactly i, and the final cell
     holds 32. *)
  let out =
    run_raw ~out_words:33
      [
        ins (I.Mov (r 1, I.Imm 0l));
        ins (I.St (I.Shared, 4, { I.base = r 1; offset = 0 }, I.Imm 0l));
        ins I.Bar;
        ins
          (I.Atom (I.Aadd, r 2, { I.base = r 1; offset = 0 }, I.Imm 1l, None));
        ins I.Bar;
        ins (I.Mov_sreg (r 3, I.Tid_x));
        ins (I.Imad (r 4, I.Reg (r 3), I.Imm 4l, I.Reg (r 0)));
        ins (I.St (I.Global, 4, { I.base = r 4; offset = 0 }, I.Reg (r 2)));
        ins (I.Ld (I.Shared, 4, r 5, { I.base = r 1; offset = 0 }));
        ins (I.St (I.Global, 4, { I.base = r 0; offset = 128 }, I.Reg (r 5)));
        ins I.Exit;
      ]
  in
  Array.iteri
    (fun t v ->
      if t < 32 then
        Alcotest.(check int)
          (Printf.sprintf "lane %d observed %d prior adds" t t)
          t (Int32.to_int v))
    out;
  Alcotest.(check int) "all 32 increments landed" 32 (Int32.to_int out.(32))

let test_atomic_min_max_cas () =
  (* min folds tids into an initial 100 -> 0; max folds them into an
     initial -5 -> 31 (signed compare); every lane CASes word 2 from 0 to
     5, so only lane 0 wins and later lanes read back the 5 *)
  let out =
    run_raw ~out_words:35
      [
        ins (I.Mov (r 1, I.Imm 0l));
        ins (I.St (I.Shared, 4, { I.base = r 1; offset = 0 }, I.Imm 100l));
        ins (I.St (I.Shared, 4, { I.base = r 1; offset = 4 }, I.Imm (-5l)));
        ins (I.St (I.Shared, 4, { I.base = r 1; offset = 8 }, I.Imm 0l));
        ins I.Bar;
        ins (I.Mov_sreg (r 3, I.Tid_x));
        ins
          (I.Atom (I.Amin, r 2, { I.base = r 1; offset = 0 }, I.Reg (r 3),
                   None));
        ins
          (I.Atom (I.Amax, r 2, { I.base = r 1; offset = 4 }, I.Reg (r 3),
                   None));
        ins
          (I.Atom (I.Acas, r 2, { I.base = r 1; offset = 8 }, I.Imm 0l,
                   Some (I.Imm 5l)));
        ins I.Bar;
        (* each lane records its CAS-returned old value, then the finals *)
        ins (I.Imad (r 4, I.Reg (r 3), I.Imm 4l, I.Reg (r 0)));
        ins (I.St (I.Global, 4, { I.base = r 4; offset = 0 }, I.Reg (r 2)));
        ins (I.Ld (I.Shared, 4, r 5, { I.base = r 1; offset = 0 }));
        ins (I.St (I.Global, 4, { I.base = r 0; offset = 128 }, I.Reg (r 5)));
        ins (I.Ld (I.Shared, 4, r 5, { I.base = r 1; offset = 4 }));
        ins (I.St (I.Global, 4, { I.base = r 0; offset = 132 }, I.Reg (r 5)));
        ins I.Exit;
      ]
  in
  Alcotest.(check int) "lane 0 won the CAS" 0 (Int32.to_int out.(0));
  for t = 1 to 31 do
    Alcotest.(check int)
      (Printf.sprintf "lane %d lost the CAS" t)
      5 (Int32.to_int out.(t))
  done;
  Alcotest.(check int) "atomic min reached 0" 0 (Int32.to_int out.(32));
  Alcotest.(check int) "atomic max reached 31 past the -5 seed" 31
    (Int32.to_int out.(33))

let test_lane_and_warp_ids () =
  let k =
    compile
      {
        Ir.name = "ids";
        params = [ "out" ];
        shared = [];
        body = [ Ir.St_global ("out", Ir.Tid, Ir.Tid) ];
      }
  in
  (* indirectly checks warp decomposition: 3 warps of a 96-thread block *)
  let out = ("out", Array.make 96 0l) in
  let _ = Sim.run ~grid:1 ~block:96 ~args:[ out ] k in
  Alcotest.(check int) "tid 95" 95 (Int32.to_int (snd out).(95))

(* --- Launch validation --------------------------------------------------- *)

let test_launch_errors () =
  let k = compile straight_line_kernel in
  let expect name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Sim.Launch_error _ -> true)
  in
  expect "missing argument" (fun () ->
      Sim.run ~grid:1 ~block:32 ~args:[] k);
  expect "unknown argument" (fun () ->
      Sim.run ~grid:1 ~block:32
        ~args:[ ("x", Array.make 32 0l); ("bogus", [||]) ]
        k);
  expect "oversized block" (fun () ->
      Sim.run ~grid:1 ~block:4096 ~args:[ ("x", Array.make 32 0l) ] k);
  expect "bad block id" (fun () ->
      Sim.run ~grid:1 ~block:32 ~block_ids:[ 5 ]
        ~args:[ ("x", Array.make 32 0l) ]
        k)

let test_memory_fault () =
  let k =
    {
      Ir.name = "oob";
      params = [ "x" ];
      shared = [];
      body = [ Ir.St_global ("x", Ir.Int 1_000_000, Ir.Int 1) ];
    }
  in
  Alcotest.(check bool) "out-of-bounds store faults" true
    (try
       ignore (run k [ ("x", Array.make 4 0l) ]);
       false
     with Gpu_sim.Memory.Fault _ -> true)

let test_runaway_guard () =
  let k =
    {
      Ir.name = "forever";
      params = [ "x" ];
      shared = [];
      body =
        [
          Ir.Local ("n", Ir.Int 1);
          Ir.While (Ir.(v "n" > i 0), [ Ir.Assign ("n", Ir.Int 1) ]);
          Ir.St_global ("x", Ir.Int 0, Ir.v "n");
        ];
    }
  in
  Alcotest.(check bool) "infinite loop detected" true
    (try
       ignore
         (Sim.run ~max_warp_instructions:100_000 ~grid:1 ~block:32
            ~args:[ ("x", Array.make 4 0l) ]
            (compile k));
       false
     with Gpu_sim.Machine.Stuck _ -> true)

(* --- Sampling ------------------------------------------------------------ *)

let test_block_sampling_scales () =
  let k =
    {
      Ir.name = "homog";
      params = [ "x" ];
      shared = [];
      body = [ Ir.St_global ("x", Ir.(imad Ctaid Ntid Tid), Ir.Tid) ];
    }
  in
  let x = ("x", Array.make (32 * 8) 0l) in
  let full = run ~grid:8 ~block:32 k [ x ] in
  let sampled =
    Sim.run ~grid:8 ~block:32 ~block_ids:[ 0; 1 ]
      ~args:[ ("x", Array.make (32 * 8) 0l) ]
      (compile k)
  in
  let tf = Stats.total full.Sim.stats in
  let ts = Stats.total sampled.Sim.stats in
  Alcotest.(check (float 1e-9)) "scale factor" 4.0 (Sim.scale_factor sampled);
  Alcotest.(check int) "sampled counts scale exactly"
    (Stats.total_issued tf)
    (Stats.total_issued ts * 4)

let () =
  Alcotest.run "sim"
    [
      ( "execution",
        [
          Alcotest.test_case "vector add" `Quick test_vector_add;
          Alcotest.test_case "if/else divergence" `Quick
            test_if_else_divergence;
          Alcotest.test_case "nested divergence" `Quick
            test_nested_divergence;
          Alcotest.test_case "data-dependent loop" `Quick
            test_data_dependent_loop;
          Alcotest.test_case "barrier communication" `Quick
            test_barrier_communication;
          Alcotest.test_case "partial warp" `Quick test_partial_warp;
          Alcotest.test_case "float ops" `Quick test_float_ops;
          Alcotest.test_case "sfu rcp" `Quick test_sfu_rcp;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "per-stage counts" `Quick test_stats_counts;
          Alcotest.test_case "computational density" `Quick
            test_stats_density;
          Alcotest.test_case "trace collection" `Quick test_trace_collection;
          Alcotest.test_case "trace builder" `Quick test_trace_builder;
          Alcotest.test_case "flat round trip" `Quick test_flat_round_trip;
          Alcotest.test_case "block sampling" `Quick
            test_block_sampling_scales;
        ] );
      ( "raw isa semantics",
        [
          Alcotest.test_case "predication" `Quick test_predicated_execution;
          Alcotest.test_case "fused mad" `Quick test_fused_mad_semantics;
          Alcotest.test_case "double precision" `Quick test_double_precision;
          Alcotest.test_case "64-bit memory" `Quick test_load64_roundtrip;
          Alcotest.test_case "atomic add lane order" `Quick
            test_atomic_add_lane_order;
          Alcotest.test_case "atomic min/max/cas" `Quick
            test_atomic_min_max_cas;
          Alcotest.test_case "ids and warps" `Quick test_lane_and_warp_ids;
        ] );
      ( "validation",
        [
          Alcotest.test_case "launch errors" `Quick test_launch_errors;
          Alcotest.test_case "memory fault" `Quick test_memory_fault;
          Alcotest.test_case "runaway guard" `Quick test_runaway_guard;
        ] );
    ]
