(* Tests for the domain pool and the calibration cache: deterministic
   result ordering, exception funneling, bit-identical serial vs parallel
   calibration, single-flight global-memory memoization, and the on-disk
   cache round-trip with fingerprint/corruption rejection. *)

module Pool = Gpu_parallel.Pool
module Memo = Gpu_parallel.Memo
module Tables = Gpu_microbench.Tables
module Calib_cache = Gpu_microbench.Calib_cache
module Spec = Gpu_hw.Spec
module I = Gpu_isa.Instr
module Diag = Gpu_diag.Diag

(* Point the disk cache at a private directory before anything touches
   Tables, so these tests neither read nor pollute the user's cache. *)
let cache_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gpuperf-test-cache-%d" (Unix.getpid ()))
  in
  Unix.putenv "GPUPERF_CACHE_DIR" d;
  d

let spec = Spec.gtx285

(* --- pool ----------------------------------------------------------------- *)

let test_init_matches_serial () =
  let f i = (i * 7919) mod 104729 in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "parallel_init jobs=%d" jobs)
        (Array.init 100 f)
        (Pool.parallel_init ~jobs 100 f))
    [ 1; 2; 4; 7 ]

let test_map_preserves_order () =
  let xs = List.init 57 (fun i -> i) in
  Alcotest.(check (list int))
    "parallel_map order" (List.map succ xs)
    (Pool.parallel_map ~jobs:4 succ xs)

let test_empty_and_tiny () =
  Alcotest.(check (list int)) "empty" [] (Pool.parallel_map ~jobs:4 succ []);
  Alcotest.(check (array int))
    "singleton" [| 42 |]
    (Pool.parallel_init ~jobs:4 1 (fun _ -> 42))

exception Boom of int

let test_exception_propagates () =
  Alcotest.check_raises "worker exception reaches caller" (Boom 13)
    (fun () ->
      ignore
        (Pool.parallel_init ~jobs:4 64 (fun i ->
             if i = 13 then raise (Boom 13) else i)));
  (* the pool must still be usable afterwards *)
  Alcotest.(check (array int))
    "pool survives a failed batch"
    (Array.init 16 (fun i -> i))
    (Pool.parallel_init ~jobs:4 16 (fun i -> i))

let test_nested_calls () =
  let grids =
    Pool.parallel_map ~jobs:4
      (fun n -> Pool.parallel_init n (fun i -> (n * 100) + i))
      [ 3; 5; 2 ]
  in
  Alcotest.(check (list (array int)))
    "nested parallel calls run inline"
    [
      Array.init 3 (fun i -> 300 + i);
      Array.init 5 (fun i -> 500 + i);
      Array.init 2 (fun i -> 200 + i);
    ]
    grids

(* A funneled exception must not leak worker domains or queue slots: the
   pool after a failed batch is indistinguishable from a fresh one. *)
let test_no_leaks_after_exception () =
  (* Materialize the pool and record its steady state. *)
  ignore (Pool.parallel_init ~jobs:4 32 (fun i -> i));
  let workers = Pool.worker_count () in
  (try
     ignore
       (Pool.parallel_init ~jobs:4 64 (fun i ->
            if i mod 5 = 0 then raise (Boom i) else i))
   with Boom _ -> ());
  Alcotest.(check int)
    "no worker domains lost or spawned" workers (Pool.worker_count ());
  Alcotest.(check int) "no queue slots left behind" 0 (Pool.queue_length ());
  Alcotest.(check (array int))
    "pool still computes correctly"
    (Array.init 48 (fun i -> i * 3))
    (Pool.parallel_init ~jobs:4 48 (fun i -> i * 3))

let test_async_drain () =
  let hits = Atomic.make 0 in
  for _ = 1 to 20 do
    Pool.async (fun () -> Atomic.incr hits)
  done;
  Alcotest.(check bool) "drain completes" true (Pool.drain_async ());
  Alcotest.(check int) "every task ran" 20 (Atomic.get hits);
  Alcotest.(check int) "nothing pending" 0 (Pool.pending_async ());
  Alcotest.(check int) "queue empty" 0 (Pool.queue_length ())

let test_async_swallows_exceptions () =
  let after = Atomic.make 0 in
  Pool.async (fun () -> failwith "async task crash");
  Pool.async (fun () -> Atomic.incr after);
  Alcotest.(check bool) "drain completes" true (Pool.drain_async ());
  Alcotest.(check int) "later task still ran" 1 (Atomic.get after);
  (* and the pool remains usable for synchronous batches *)
  Alcotest.(check (list int))
    "pool alive" [ 2; 4; 6 ]
    (Pool.parallel_map ~jobs:2 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_drain_timeout () =
  let release = Atomic.make false in
  Pool.async (fun () -> while not (Atomic.get release) do Unix.sleepf 0.002 done);
  Alcotest.(check bool)
    "timed-out drain reports false" false
    (Pool.drain_async ~timeout_s:0.05 ());
  Atomic.set release true;
  Alcotest.(check bool) "then drains fully" true (Pool.drain_async ())

let test_memo_once () =
  let calls = Atomic.make 0 in
  let m =
    Memo.once (fun () ->
        Atomic.incr calls;
        (* give contenders a window to pile up on the memo *)
        ignore (Pool.parallel_init ~jobs:2 64 (fun i -> i * i));
        1729)
  in
  let values = Pool.parallel_map ~jobs:4 (fun _ -> m ()) [ (); (); (); () ] in
  Alcotest.(check (list int)) "all callers see the value" [ 1729; 1729; 1729; 1729 ] values;
  Alcotest.(check int) "body ran once" 1 (Atomic.get calls)

(* --- job-count validation (one validator for --jobs and GPUPERF_JOBS) ---- *)

let test_parse_jobs () =
  List.iter
    (fun (s, expect) ->
      match Pool.parse_jobs s with
      | Ok n -> Alcotest.(check int) ("parse_jobs " ^ s) expect n
      | Error m -> Alcotest.failf "parse_jobs rejected %S: %s" s m)
    [ ("1", 1); ("4", 4); ("64", 64) ];
  List.iter
    (fun s ->
      match Pool.parse_jobs s with
      | Ok n -> Alcotest.failf "parse_jobs accepted %S as %d" s n
      | Error _ -> ())
    [ "0"; "-3"; ""; "bogus"; "2.5"; "1e3" ]

(* The CLI must reject an invalid job count identically whether it comes
   from --jobs or from GPUPERF_JOBS: usage error, exit 2, before any
   calibration starts.  Regression: --jobs 0 used to exit 1 (a late Cli
   diagnostic) and an invalid GPUPERF_JOBS was silently ignored. *)
let gpuperf_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "gpuperf.exe"))

let run_gpuperf ?(env = "") args =
  Sys.command
    (Printf.sprintf "%s %s %s >/dev/null 2>&1" env gpuperf_exe args)

let test_cli_jobs_flag () =
  Alcotest.(check int) "--jobs 0 is a usage error" 2
    (run_gpuperf "microbench --jobs 0");
  Alcotest.(check int) "--jobs -3 is a usage error" 2
    (run_gpuperf "microbench --jobs=-3");
  Alcotest.(check int) "-j bogus is a usage error" 2
    (run_gpuperf "check -j bogus")

let test_cli_jobs_env () =
  Alcotest.(check int) "GPUPERF_JOBS=0 is a usage error" 2
    (run_gpuperf ~env:"GPUPERF_JOBS=0" "microbench");
  Alcotest.(check int) "GPUPERF_JOBS=bogus is a usage error" 2
    (run_gpuperf ~env:"GPUPERF_JOBS=bogus" "microbench");
  (* A valid env value must be accepted: this run fails later in the
     toolchain (bad tile -> analysis diagnostic, exit 1, before any
     calibration), proving the env var passed validation. *)
  Alcotest.(check int) "GPUPERF_JOBS=2 is accepted" 1
    (run_gpuperf ~env:"GPUPERF_JOBS=2" "analyze matmul --tile 7")

(* --- calibration determinism --------------------------------------------- *)

let check_tables_identical msg a b =
  List.iter
    (fun cls ->
      for w = 1 to Tables.max_warps do
        let x = Tables.instr_throughput a cls ~warps:w in
        let y = Tables.instr_throughput b cls ~warps:w in
        if x <> y then
          Alcotest.failf "%s: %s at %d warps: %h <> %h" msg
            (I.cost_class_name cls) w x y
      done)
    Tables.arithmetic_classes;
  for w = 1 to Tables.max_warps do
    let x = Tables.smem_bandwidth a ~warps:w in
    let y = Tables.smem_bandwidth b ~warps:w in
    if x <> y then Alcotest.failf "%s: smem at %d warps: %h <> %h" msg w x y
  done

let test_serial_parallel_identical () =
  let serial = Tables.build ~jobs:1 spec in
  let parallel = Tables.build ~jobs:4 spec in
  check_tables_identical "serial vs parallel calibration" serial parallel

let test_gmem_single_flight () =
  let t = Tables.build ~jobs:1 spec in
  let before = (Tables.counters ()).Tables.gmem_measurements in
  let query () =
    Tables.gmem_bandwidth t ~blocks:3 ~threads:64 ~txns_per_thread:4
  in
  let domains = List.init 4 (fun _ -> Domain.spawn query) in
  let results = List.map Domain.join domains in
  let after = (Tables.counters ()).Tables.gmem_measurements in
  Alcotest.(check int) "concurrent misses measure once" 1 (after - before);
  (match results with
  | r :: rest ->
    List.iter
      (fun r' -> Alcotest.(check (float 0.0)) "all callers agree" r r')
      rest
  | [] -> assert false);
  Alcotest.(check (float 0.0))
    "memo hit returns the same value" (List.hd results) (query ());
  Alcotest.(check int)
    "hit does not re-measure" (after - before)
    ((Tables.counters ()).Tables.gmem_measurements - before)

(* --- on-disk cache -------------------------------------------------------- *)

let payload =
  {
    Calib_cache.instr =
      [| [| 1.5; 2.25 |]; [| 0.1; 1e-3 |]; [| 3.0; 4.0 |]; [| 5.5; 6.5 |] |];
    smem = [| 0x1.91eb851eb851fp+7; 186.5 |];
    gmem = [ ((1, 64, 4), 12.75); ((30, 512, 256), 127.125) ];
  }

let fp = Calib_cache.fingerprint ~constants:"test-constants v1" spec

let roundtrip_path = Filename.concat cache_dir "roundtrip.txt"

(* --- transient-failure retries ------------------------------------------- *)

let test_retrying_transient () =
  let failures = ref 2 and calls = ref 0 and warnings = ref [] in
  let v =
    Calib_cache.retrying
      ~on_retry:(fun d -> warnings := d :: !warnings)
      ~what:"read" ~path:"/tmp/x"
      (fun () ->
        incr calls;
        if !failures > 0 then begin
          decr failures;
          raise (Unix.Unix_error (Unix.EINTR, "read", "/tmp/x"))
        end;
        1729)
  in
  Alcotest.(check int) "eventually succeeds" 1729 v;
  Alcotest.(check int) "two failures + one success" 3 !calls;
  Alcotest.(check int) "one warning per retry" 2 (List.length !warnings);
  List.iter
    (fun d ->
      Alcotest.(check bool)
        "retry diag is a Cache warning" true
        (d.Diag.severity = Diag.Warning && d.Diag.stage = Diag.Cache))
    !warnings

let test_retrying_exhausted () =
  let calls = ref 0 in
  Alcotest.check_raises "persistent EAGAIN re-raises"
    (Unix.Unix_error (Unix.EAGAIN, "write", "p"))
    (fun () ->
      Calib_cache.retrying ~attempts:3
        ~on_retry:(fun _ -> ())
        ~what:"write" ~path:"p"
        (fun () ->
          incr calls;
          raise (Unix.Unix_error (Unix.EAGAIN, "write", "p"))));
  Alcotest.(check int) "tried exactly [attempts] times" 3 !calls

let test_retrying_non_transient () =
  let calls = ref 0 in
  Alcotest.check_raises "ENOSPC is not retried"
    (Unix.Unix_error (Unix.ENOSPC, "write", "p"))
    (fun () ->
      Calib_cache.retrying
        ~on_retry:(fun _ -> ())
        ~what:"write" ~path:"p"
        (fun () ->
          incr calls;
          raise (Unix.Unix_error (Unix.ENOSPC, "write", "p"))));
  Alcotest.(check int) "no retries" 1 !calls

let test_save_takes_write_lock () =
  let path = Filename.concat cache_dir "locked.txt" in
  (match
     Calib_cache.save ~path ~fingerprint:fp ~spec_name:spec.Spec.name payload
   with
  | Ok () -> ()
  | Error d -> Alcotest.failf "save failed: %s" (Diag.to_string d));
  Alcotest.(check bool)
    "lock file exists next to the table" true
    (Sys.file_exists (Calib_cache.lock_path path));
  (* lock released: a second save must not deadlock *)
  match
    Calib_cache.save ~path ~fingerprint:fp ~spec_name:spec.Spec.name payload
  with
  | Ok () -> ()
  | Error d -> Alcotest.failf "re-save failed: %s" (Diag.to_string d)

let test_cache_roundtrip () =
  (match
     Calib_cache.save ~path:roundtrip_path ~fingerprint:fp
       ~spec_name:spec.Spec.name payload
   with
  | Ok () -> ()
  | Error d -> Alcotest.failf "save failed: %s" (Diag.to_string d));
  match Calib_cache.load ~path:roundtrip_path ~fingerprint:fp () with
  | `Hit p ->
    Alcotest.(check (array (array (float 0.0))))
      "instr bit-exact" payload.Calib_cache.instr p.Calib_cache.instr;
    Alcotest.(check (array (float 0.0)))
      "smem bit-exact" payload.Calib_cache.smem p.Calib_cache.smem;
    Alcotest.(check int)
      "gmem points survive"
      (List.length payload.Calib_cache.gmem)
      (List.length p.Calib_cache.gmem);
    List.iter2
      (fun (k, v) (k', v') ->
        if k <> k' || v <> v' then Alcotest.fail "gmem entry mismatch")
      payload.Calib_cache.gmem p.Calib_cache.gmem
  | `Miss -> Alcotest.fail "expected a hit, got a miss"
  | `Rejected d -> Alcotest.failf "rejected: %s" (Diag.to_string d)

let test_cache_miss_and_rejection () =
  (match
     Calib_cache.load
       ~path:(Filename.concat cache_dir "never-written.txt")
       ~fingerprint:fp ()
   with
  | `Miss -> ()
  | `Hit _ | `Rejected _ -> Alcotest.fail "missing file must be a miss");
  (* stale fingerprint: the spec or the calibration constants changed *)
  (match
     Calib_cache.load ~path:roundtrip_path
       ~fingerprint:(Calib_cache.fingerprint ~constants:"other" spec) ()
   with
  | `Rejected d ->
    Alcotest.(check string) "stage" "cache" (Diag.stage_name d.Diag.stage)
  | `Hit _ -> Alcotest.fail "stale fingerprint must be rejected"
  | `Miss -> Alcotest.fail "file exists: not a miss");
  (* truncation *)
  let truncated = Filename.concat cache_dir "truncated.txt" in
  let contents =
    let ic = open_in_bin roundtrip_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let oc = open_out_bin truncated in
  output_string oc (String.sub contents 0 (String.length contents / 2));
  close_out oc;
  (match Calib_cache.load ~path:truncated ~fingerprint:fp () with
  | `Rejected _ -> ()
  | `Hit _ -> Alcotest.fail "truncated file must be rejected"
  | `Miss -> Alcotest.fail "truncated file is not a miss");
  (* garbage *)
  let garbage = Filename.concat cache_dir "garbage.txt" in
  let oc = open_out_bin garbage in
  output_string oc "gpuperf-calibration 999\nnot a cache file\n";
  close_out oc;
  match Calib_cache.load ~path:garbage ~fingerprint:fp () with
  | `Rejected _ -> ()
  | `Hit _ -> Alcotest.fail "wrong version must be rejected"
  | `Miss -> Alcotest.fail "wrong version is not a miss"

(* End-to-end through Tables: calibrate (writes the cache), drop the
   in-process table, reload from disk — values identical, no re-measure. *)
let test_tables_warm_reload () =
  let diags = ref [] in
  Tables.set_on_diag (fun d -> diags := d :: !diags);
  let cold = Tables.for_spec ~jobs:2 spec in
  let c0 = Tables.counters () in
  Tables.clear_process_cache ();
  let warm = Tables.for_spec ~jobs:2 spec in
  let c1 = Tables.counters () in
  Alcotest.(check int)
    "warm reload skips measurement" 0
    (c1.Tables.instr_smem_measurements - c0.Tables.instr_smem_measurements);
  Alcotest.(check int)
    "warm reload loads from disk" 1 (c1.Tables.cache_loads - c0.Tables.cache_loads);
  check_tables_identical "cold vs warm tables" cold warm;
  (* now corrupt the file: the next load must warn and recalibrate *)
  let path = Option.get (Calib_cache.path_for spec) in
  let oc = open_out_bin path in
  output_string oc "gpuperf-calibration 1\nfingerprint deadbeef\n";
  close_out oc;
  diags := [];
  Tables.clear_process_cache ();
  let rebuilt = Tables.for_spec ~jobs:2 spec in
  let c2 = Tables.counters () in
  Alcotest.(check bool)
    "corrupt cache recalibrates" true
    (c2.Tables.calibrations - c1.Tables.calibrations = 1);
  Alcotest.(check bool)
    "corrupt cache warns" true
    (List.exists (fun d -> d.Diag.severity = Diag.Warning) !diags);
  check_tables_identical "recalibrated tables" cold rebuilt;
  Tables.set_on_diag (fun _ -> ())

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "init matches serial" `Quick
            test_init_matches_serial;
          Alcotest.test_case "map preserves order" `Quick
            test_map_preserves_order;
          Alcotest.test_case "empty and tiny inputs" `Quick
            test_empty_and_tiny;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested calls" `Quick test_nested_calls;
          Alcotest.test_case "no leaks after exception" `Quick
            test_no_leaks_after_exception;
          Alcotest.test_case "async submit and drain" `Quick
            test_async_drain;
          Alcotest.test_case "async swallows exceptions" `Quick
            test_async_swallows_exceptions;
          Alcotest.test_case "drain_async timeout" `Quick
            test_drain_timeout;
          Alcotest.test_case "memo single-flight" `Quick test_memo_once;
        ] );
      ( "jobs validation",
        [
          Alcotest.test_case "parse_jobs accepts/rejects" `Quick
            test_parse_jobs;
          Alcotest.test_case "--jobs usage errors exit 2" `Quick
            test_cli_jobs_flag;
          Alcotest.test_case "GPUPERF_JOBS validated identically" `Quick
            test_cli_jobs_env;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "serial = parallel (bit-identical)" `Quick
            test_serial_parallel_identical;
          Alcotest.test_case "gmem single-flight" `Quick
            test_gmem_single_flight;
        ] );
      ( "retries",
        [
          Alcotest.test_case "transient failures retried" `Quick
            test_retrying_transient;
          Alcotest.test_case "attempts exhausted re-raises" `Quick
            test_retrying_exhausted;
          Alcotest.test_case "non-transient re-raises at once" `Quick
            test_retrying_non_transient;
          Alcotest.test_case "save takes the write lock" `Quick
            test_save_takes_write_lock;
        ] );
      ( "disk cache",
        [
          Alcotest.test_case "round-trip" `Quick test_cache_roundtrip;
          Alcotest.test_case "miss and rejection" `Quick
            test_cache_miss_and_rejection;
          Alcotest.test_case "warm reload through Tables" `Quick
            test_tables_warm_reload;
        ] );
    ]
